#include "bpf/jit.h"

#include <unordered_map>

#include "bpf/eval_inl.h"

namespace rdx::bpf {

bool JitImage::IsLinked() const {
  for (const Relocation& reloc : relocs) {
    if (reloc.kind == RelocKind::kMapAddress &&
        code[reloc.index].imm64 == kUnlinkedPlaceholder) {
      return false;
    }
  }
  return true;
}

namespace {
constexpr std::uint32_t kImageMagic = 0x4a584452;  // "RDXJ"
constexpr std::uint32_t kImageVersion = 4;

bool KindHasTarget(OpKind kind) {
  return kind == OpKind::kJumpAbs || kind == OpKind::kCondJmpK ||
         kind == OpKind::kCondJmpX || kind == OpKind::kCondJmp32K ||
         kind == OpKind::kCondJmp32X || kind == OpKind::kStoreImm;
}
bool KindHasImm64(OpKind kind) { return kind == OpKind::kLoadImm64; }

void AppendString(Bytes& out, const std::string& s) {
  AppendLE<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

StatusOr<std::string> ReadString(ByteSpan bytes, std::size_t& off) {
  if (off + 4 > bytes.size()) return InvalidArgument("truncated string");
  const std::uint32_t len = LoadLE<std::uint32_t>(bytes.data() + off);
  off += 4;
  if (off + len > bytes.size()) return InvalidArgument("truncated string");
  std::string s(reinterpret_cast<const char*>(bytes.data() + off), len);
  off += len;
  return s;
}
}  // namespace

Bytes JitImage::Serialize() const {
  Bytes out;
  AppendLE<std::uint32_t>(out, kImageMagic);
  AppendLE<std::uint32_t>(out, kImageVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(0);
  out.push_back(0);
  out.push_back(0);
  AppendString(out, program_name);

  // Variable-length encoding keeps the deployed binary near the ~8
  // bytes/insn of a native eBPF JIT: a 4-byte header + 4-byte imm, with
  // the branch target / 64-bit immediate only where the kind needs them.
  AppendLE<std::uint32_t>(out, static_cast<std::uint32_t>(code.size()));
  for (const MicroOp& op : code) {
    out.push_back(static_cast<std::uint8_t>(op.kind));
    out.push_back(op.aux);
    out.push_back(op.dst);
    out.push_back(op.src);
    AppendLE<std::int32_t>(out, op.imm);
    if (KindHasTarget(op.kind)) AppendLE<std::uint32_t>(out, op.target);
    if (KindHasImm64(op.kind)) AppendLE<std::uint64_t>(out, op.imm64);
  }

  AppendLE<std::uint32_t>(out, static_cast<std::uint32_t>(relocs.size()));
  for (const Relocation& reloc : relocs) {
    out.push_back(static_cast<std::uint8_t>(reloc.kind));
    out.push_back(0);
    out.push_back(0);
    out.push_back(0);
    AppendLE<std::uint32_t>(out, reloc.index);
    AppendLE<std::int32_t>(out, reloc.symbol);
  }

  AppendLE<std::uint32_t>(out, static_cast<std::uint32_t>(maps.size()));
  for (const MapSpec& map : maps) {
    AppendString(out, map.name);
    out.push_back(static_cast<std::uint8_t>(map.type));
    out.push_back(0);
    out.push_back(0);
    out.push_back(0);
    AppendLE<std::uint32_t>(out, map.key_size);
    AppendLE<std::uint32_t>(out, map.value_size);
    AppendLE<std::uint32_t>(out, map.max_entries);
  }

  AppendLE<std::uint64_t>(out, Fnv1a64(out));
  return out;
}

StatusOr<JitImage> JitImage::Deserialize(ByteSpan bytes) {
  if (bytes.size() < 20) return InvalidArgument("image too small");
  const std::uint64_t stored_sum =
      LoadLE<std::uint64_t>(bytes.data() + bytes.size() - 8);
  if (Fnv1a64(bytes.subspan(0, bytes.size() - 8)) != stored_sum) {
    return FailedPrecondition("image checksum mismatch");
  }
  std::size_t off = 0;
  if (LoadLE<std::uint32_t>(bytes.data()) != kImageMagic) {
    return InvalidArgument("bad image magic");
  }
  off += 4;
  if (LoadLE<std::uint32_t>(bytes.data() + off) != kImageVersion) {
    return InvalidArgument("unsupported image version");
  }
  off += 4;
  JitImage image;
  image.type = static_cast<ProgramType>(bytes[off]);
  off += 4;
  RDX_ASSIGN_OR_RETURN(image.program_name, ReadString(bytes, off));

  if (off + 4 > bytes.size()) return InvalidArgument("truncated code count");
  const std::uint32_t ncode = LoadLE<std::uint32_t>(bytes.data() + off);
  off += 4;
  image.code.reserve(ncode);
  for (std::uint32_t i = 0; i < ncode; ++i) {
    if (off + 8 > bytes.size()) {
      return InvalidArgument("truncated code section");
    }
    MicroOp op;
    op.kind = static_cast<OpKind>(bytes[off]);
    if (op.kind > OpKind::kEndian) {
      return InvalidArgument("unknown micro-op kind");
    }
    op.aux = bytes[off + 1];
    op.dst = bytes[off + 2];
    op.src = bytes[off + 3];
    op.imm = LoadLE<std::int32_t>(bytes.data() + off + 4);
    off += 8;
    if (KindHasTarget(op.kind)) {
      if (off + 4 > bytes.size()) return InvalidArgument("truncated code");
      op.target = LoadLE<std::uint32_t>(bytes.data() + off);
      off += 4;
    }
    if (KindHasImm64(op.kind)) {
      if (off + 8 > bytes.size()) return InvalidArgument("truncated code");
      op.imm64 = LoadLE<std::uint64_t>(bytes.data() + off);
      off += 8;
    }
    image.code.push_back(op);
  }

  if (off + 4 > bytes.size()) return InvalidArgument("truncated relocs");
  const std::uint32_t nrelocs = LoadLE<std::uint32_t>(bytes.data() + off);
  off += 4;
  if (off + static_cast<std::size_t>(nrelocs) * 12 > bytes.size()) {
    return InvalidArgument("truncated reloc section");
  }
  for (std::uint32_t i = 0; i < nrelocs; ++i) {
    Relocation reloc;
    reloc.kind = static_cast<RelocKind>(bytes[off]);
    reloc.index = LoadLE<std::uint32_t>(bytes.data() + off + 4);
    reloc.symbol = LoadLE<std::int32_t>(bytes.data() + off + 8);
    if (reloc.index >= image.code.size()) {
      return InvalidArgument("relocation index out of range");
    }
    image.relocs.push_back(reloc);
    off += 12;
  }

  if (off + 4 > bytes.size()) return InvalidArgument("truncated maps");
  const std::uint32_t nmaps = LoadLE<std::uint32_t>(bytes.data() + off);
  off += 4;
  for (std::uint32_t i = 0; i < nmaps; ++i) {
    MapSpec map;
    RDX_ASSIGN_OR_RETURN(map.name, ReadString(bytes, off));
    if (off + 16 > bytes.size()) return InvalidArgument("truncated map spec");
    map.type = static_cast<MapType>(bytes[off]);
    map.key_size = LoadLE<std::uint32_t>(bytes.data() + off + 4);
    map.value_size = LoadLE<std::uint32_t>(bytes.data() + off + 8);
    map.max_entries = LoadLE<std::uint32_t>(bytes.data() + off + 12);
    image.maps.push_back(std::move(map));
    off += 16;
  }
  return image;
}

std::uint64_t JitImage::Fingerprint() const {
  // Hash the semantic content with map-address slots normalized back to
  // placeholders, so a linked and an unlinked copy of the same compile
  // fingerprint identically.
  JitImage normalized = *this;
  for (const Relocation& reloc : normalized.relocs) {
    if (reloc.kind == RelocKind::kMapAddress) {
      normalized.code[reloc.index].imm64 = kUnlinkedPlaceholder;
    }
  }
  return Fnv1a64(normalized.Serialize());
}

StatusOr<JitImage> JitCompiler::Compile(const Program& prog) const {
  if (prog.insns.empty()) return InvalidArgument("empty program");

  JitImage image;
  image.program_name = prog.name;
  image.type = prog.type;
  image.maps = prog.maps;

  // Pass 1: lower instructions; remember insn index -> micro-op index.
  std::vector<std::uint32_t> micro_index(prog.insns.size() + 1, 0);
  struct PendingJump {
    std::uint32_t micro;   // micro-op to patch
    std::size_t target_insn;
  };
  std::vector<PendingJump> pending;

  for (std::size_t i = 0; i < prog.insns.size(); ++i) {
    const Insn& insn = prog.insns[i];
    micro_index[i] = static_cast<std::uint32_t>(image.code.size());
    MicroOp op;
    op.dst = insn.dst_reg;
    op.src = insn.src_reg;
    op.imm = insn.imm;
    switch (insn.cls()) {
      case kClassAlu64:
      case kClassAlu: {
        if (insn.AluOp() == kAluEnd) {
          if (insn.cls() != kClassAlu) {
            return InvalidArgument("BPF_END outside the ALU class");
          }
          if (insn.imm != 16 && insn.imm != 32 && insn.imm != 64) {
            return InvalidArgument("bad byte-swap width");
          }
          op.kind = OpKind::kEndian;
          op.aux = static_cast<std::uint8_t>(insn.imm);
          op.src = insn.UsesRegSrc() ? 1 : 0;
          break;
        }
        const bool is64 = insn.cls() == kClassAlu64;
        op.kind = insn.UsesRegSrc() ? (is64 ? OpKind::kAlu64X : OpKind::kAlu32X)
                                    : (is64 ? OpKind::kAlu64K : OpKind::kAlu32K);
        op.aux = insn.AluOp();
        break;
      }
      case kClassJmp32: {
        const std::size_t target = i + 1 + insn.off;
        if (target > prog.insns.size()) {
          return InvalidArgument("jump out of range");
        }
        op.kind = insn.UsesRegSrc() ? OpKind::kCondJmp32X
                                    : OpKind::kCondJmp32K;
        op.aux = insn.JmpOp();
        pending.push_back(
            {static_cast<std::uint32_t>(image.code.size()), target});
        break;
      }
      case kClassJmp: {
        const std::uint8_t jop = insn.JmpOp();
        if (jop == kJmpExit) {
          op.kind = OpKind::kExit;
        } else if (jop == kJmpCall) {
          op.kind = OpKind::kCall;
          if (FindHelper(insn.imm) == nullptr) {
            return InvalidArgument("call to unknown helper");
          }
          image.relocs.push_back(
              {RelocKind::kHelperCall,
               static_cast<std::uint32_t>(image.code.size()), insn.imm});
        } else {
          const std::size_t target = i + 1 + insn.off;
          if (target > prog.insns.size()) {
            return InvalidArgument("jump out of range");
          }
          if (jop == kJmpJa) {
            op.kind = OpKind::kJumpAbs;
          } else {
            op.kind = insn.UsesRegSrc() ? OpKind::kCondJmpX
                                        : OpKind::kCondJmpK;
            op.aux = jop;
          }
          pending.push_back(
              {static_cast<std::uint32_t>(image.code.size()), target});
        }
        break;
      }
      case kClassLdx:
        op.kind = OpKind::kLoad;
        op.aux = static_cast<std::uint8_t>(insn.AccessBytes());
        op.imm = insn.off;  // displacement travels in imm
        break;
      case kClassSt:
        op.kind = OpKind::kStoreImm;
        op.aux = static_cast<std::uint8_t>(insn.AccessBytes());
        op.target = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(insn.off));  // displacement
        break;
      case kClassStx:
        op.kind = OpKind::kStoreReg;
        op.aux = static_cast<std::uint8_t>(insn.AccessBytes());
        op.imm = insn.off;
        break;
      case kClassLd: {
        if (!insn.IsLdImm64() || i + 1 >= prog.insns.size()) {
          return InvalidArgument("malformed LD_IMM64");
        }
        op.kind = OpKind::kLoadImm64;
        const Insn& hi = prog.insns[i + 1];
        if (insn.src_reg == kPseudoMapFd) {
          if (insn.imm < 0 ||
              static_cast<std::size_t>(insn.imm) >= prog.maps.size()) {
            return InvalidArgument("map slot out of range");
          }
          op.imm64 = kUnlinkedPlaceholder;
          image.relocs.push_back(
              {RelocKind::kMapAddress,
               static_cast<std::uint32_t>(image.code.size()), insn.imm});
        } else {
          op.imm64 = (static_cast<std::uint64_t>(
                          static_cast<std::uint32_t>(hi.imm))
                      << 32) |
                     static_cast<std::uint32_t>(insn.imm);
        }
        // The second slot maps to the same micro-op.
        micro_index[i + 1] = micro_index[i];
        ++i;
        break;
      }
      default:
        return InvalidArgument("unknown instruction class");
    }
    image.code.push_back(op);
  }
  micro_index[prog.insns.size()] =
      static_cast<std::uint32_t>(image.code.size());

  // Pass 2: resolve branch targets to absolute micro-op indices.
  for (const PendingJump& jump : pending) {
    image.code[jump.micro].target = micro_index[jump.target_insn];
  }
  return image;
}

StatusOr<ExecResult> RunJit(const JitImage& image, RuntimeContext& rt,
                            const ExecOptions& opts) {
  if (rt.mem == nullptr) return Internal("RuntimeContext without MemSpace");
  if (!image.IsLinked()) {
    return FailedPrecondition("executing unlinked image");
  }
  std::uint64_t regs[kNumRegs] = {};
  regs[1] = opts.ctx_addr;
  regs[kFrameReg] = opts.stack_addr + kStackSize;

  ExecResult result;
  std::uint32_t pc = 0;
  const std::size_t n = image.code.size();
  while (true) {
    if (pc >= n) return Aborted("jit pc ran off the end");
    if (++result.insns_executed > opts.insn_limit) {
      return ResourceExhausted("instruction limit exceeded");
    }
    const MicroOp& op = image.code[pc];
    switch (op.kind) {
      case OpKind::kAlu64K:
      case OpKind::kAlu64X:
      case OpKind::kAlu32K:
      case OpKind::kAlu32X: {
        const bool is64 =
            op.kind == OpKind::kAlu64K || op.kind == OpKind::kAlu64X;
        const bool reg_src =
            op.kind == OpKind::kAlu64X || op.kind == OpKind::kAlu32X;
        const std::uint64_t src =
            op.aux == kAluNeg
                ? 0
                : (reg_src ? regs[op.src]
                           : static_cast<std::uint64_t>(
                                 static_cast<std::int64_t>(op.imm)));
        bool ok = false;
        regs[op.dst] = internal::AluEval(op.aux, regs[op.dst], src, is64, ok);
        if (!ok) return Internal("jit image with bad ALU op");
        ++pc;
        break;
      }
      case OpKind::kJumpAbs:
        pc = op.target;
        break;
      case OpKind::kCondJmpK:
      case OpKind::kCondJmpX: {
        const std::uint64_t src =
            op.kind == OpKind::kCondJmpX
                ? regs[op.src]
                : static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(op.imm));
        bool ok = false;
        const bool taken = internal::JmpEval(op.aux, regs[op.dst], src, ok);
        if (!ok) return Internal("jit image with bad JMP op");
        pc = taken ? op.target : pc + 1;
        break;
      }
      case OpKind::kCall: {
        std::array<std::uint64_t, kMaxHelperArgs> args = {
            regs[1], regs[2], regs[3], regs[4], regs[5]};
        RDX_ASSIGN_OR_RETURN(regs[0], CallHelperFn(rt, op.imm, args));
        for (int r = 1; r <= 5; ++r) regs[r] = 0;
        ++pc;
        break;
      }
      case OpKind::kExit:
        result.r0 = regs[0];
        return result;
      case OpKind::kLoad: {
        const std::uint64_t addr =
            regs[op.src] + static_cast<std::int64_t>(op.imm);
        std::uint64_t value = 0;
        RDX_RETURN_IF_ERROR(rt.mem->LoadInt(addr, op.aux, value));
        regs[op.dst] = value;
        ++pc;
        break;
      }
      case OpKind::kStoreImm: {
        const std::uint64_t addr =
            regs[op.dst] +
            static_cast<std::int64_t>(static_cast<std::int32_t>(op.target));
        RDX_RETURN_IF_ERROR(rt.mem->StoreInt(
            addr, op.aux,
            static_cast<std::uint64_t>(static_cast<std::int64_t>(op.imm))));
        ++pc;
        break;
      }
      case OpKind::kStoreReg: {
        const std::uint64_t addr =
            regs[op.dst] + static_cast<std::int64_t>(op.imm);
        RDX_RETURN_IF_ERROR(rt.mem->StoreInt(addr, op.aux, regs[op.src]));
        ++pc;
        break;
      }
      case OpKind::kLoadImm64:
        regs[op.dst] = op.imm64;
        ++pc;
        break;
      case OpKind::kCondJmp32K:
      case OpKind::kCondJmp32X: {
        const std::uint64_t dst_val = internal::SignExtend32(regs[op.dst]);
        const std::uint64_t src_val = internal::SignExtend32(
            op.kind == OpKind::kCondJmp32X
                ? regs[op.src]
                : static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(op.imm)));
        bool ok = false;
        const bool taken = internal::JmpEval(op.aux, dst_val, src_val, ok);
        if (!ok) return Internal("jit image with bad JMP32 op");
        pc = taken ? op.target : pc + 1;
        break;
      }
      case OpKind::kEndian: {
        bool swap_ok = false;
        regs[op.dst] = internal::EndianEval(regs[op.dst], op.aux,
                                            op.src != 0, swap_ok);
        if (!swap_ok) return Internal("jit image with bad swap width");
        ++pc;
        break;
      }
      default:
        return Internal("jit image with unknown micro-op");
    }
  }
}

}  // namespace rdx::bpf
