// Execution environment for eBPF extensions. Programs run against a
// MemSpace — an abstract flat address space. In unit tests and in the
// agent baseline this is a process-local VectorMemory; inside an RDX
// sandbox it is the node's simulated DRAM (HostMemory), which is what
// lets the remote control plane observe and mutate the very same bytes
// (maps, context, code) over one-sided RDMA.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "bpf/maps.h"
#include "bpf/program.h"
#include "common/rng.h"
#include "common/status.h"

namespace rdx::bpf {

class MemSpace {
 public:
  virtual ~MemSpace() = default;

  // Returns a writable window over [addr, addr+len), or an error if the
  // range is invalid in this space.
  virtual StatusOr<MutableByteSpan> SpanAt(std::uint64_t addr,
                                           std::uint64_t len) = 0;

  // Convenience integer accessors built on SpanAt. `size` is 1/2/4/8.
  Status LoadInt(std::uint64_t addr, int size, std::uint64_t& out);
  Status StoreInt(std::uint64_t addr, int size, std::uint64_t value);
};

// Process-local MemSpace with a bump allocator. The nonzero base address
// keeps null pointers invalid.
class VectorMemory : public MemSpace {
 public:
  explicit VectorMemory(std::uint64_t capacity,
                        std::uint64_t base = 0x1000);

  StatusOr<MutableByteSpan> SpanAt(std::uint64_t addr,
                                   std::uint64_t len) override;
  StatusOr<std::uint64_t> Allocate(std::uint64_t size,
                                   std::uint64_t align = 8);
  std::uint64_t base() const { return base_; }

 private:
  std::uint64_t base_;
  std::uint64_t next_;
  Bytes bytes_;
};

// ---- Helper functions (ids follow the kernel where one exists) ----
enum HelperId : std::int32_t {
  kHelperMapLookupElem = 1,
  kHelperMapUpdateElem = 2,
  kHelperMapDeleteElem = 3,
  kHelperKtimeGetNs = 5,
  kHelperTracePrintk = 6,
  kHelperGetPrandomU32 = 7,
  kHelperGetSmpProcessorId = 8,
  kHelperRingbufOutput = 130,
};

// Signature metadata used by the verifier and by the RDX link stage's
// symbol table.
struct HelperSpec {
  HelperId id;
  const char* name;
  bool arg1_is_map;     // r1 must be a map reference
  bool arg2_is_mem;     // r2 must point to readable memory (key/data)
  bool arg3_is_mem;     // r3 must point to readable memory (value)
  bool returns_map_value_or_null;
};

// Returns the spec for a helper id, or nullptr if unknown.
const HelperSpec* FindHelper(std::int32_t id);

// Everything a running extension can touch besides its registers: the
// address space, registered maps, and ambient facilities (virtual clock,
// deterministic RNG). One RuntimeContext per sandbox.
struct RuntimeContext {
  MemSpace* mem = nullptr;
  std::function<std::uint64_t()> ktime_ns = [] { return 0ull; };
  Rng* rng = nullptr;
  // Maps registered by storage address; the address doubles as the map
  // handle value the program holds in a register.
  std::unordered_map<std::uint64_t, MapSpec> maps;
  std::uint64_t trace_count = 0;   // kHelperTracePrintk invocations
  std::uint32_t processor_id = 0;
};

// Dispatches a helper call. Returns the helper's r0.
StatusOr<std::uint64_t> CallHelperFn(
    RuntimeContext& rt, std::int32_t id,
    const std::array<std::uint64_t, kMaxHelperArgs>& args);

// Result of executing an extension to completion.
struct ExecResult {
  std::uint64_t r0 = 0;
  std::uint64_t insns_executed = 0;
};

// Per-invocation parameters shared by the interpreter and the JIT runner.
struct ExecOptions {
  std::uint64_t ctx_addr = 0;    // r1 at entry
  std::uint64_t ctx_len = 0;     // readable bytes at ctx_addr
  std::uint64_t stack_addr = 0;  // base of a kStackSize-byte stack region
  std::uint64_t insn_limit = 1u << 20;
};

}  // namespace rdx::bpf
