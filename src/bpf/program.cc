#include "bpf/program.h"

namespace rdx::bpf {

const char* ProgramTypeName(ProgramType type) {
  switch (type) {
    case ProgramType::kSocketFilter: return "socket_filter";
    case ProgramType::kXdp: return "xdp";
    case ProgramType::kTracepoint: return "tracepoint";
  }
  return "unknown";
}

const char* MapTypeName(MapType type) {
  switch (type) {
    case MapType::kArray: return "array";
    case MapType::kHash: return "hash";
    case MapType::kRingBuf: return "ringbuf";
  }
  return "unknown";
}

}  // namespace rdx::bpf
