file(REMOVE_RECURSE
  "CMakeFiles/fig2b_update_inconsistency.dir/fig2b_update_inconsistency.cc.o"
  "CMakeFiles/fig2b_update_inconsistency.dir/fig2b_update_inconsistency.cc.o.d"
  "fig2b_update_inconsistency"
  "fig2b_update_inconsistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_update_inconsistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
