# Empty compiler generated dependencies file for fig2b_update_inconsistency.
# This may be replaced when dependencies are built.
