# Empty dependencies file for mesh_improvement.
# This may be replaced when dependencies are built.
