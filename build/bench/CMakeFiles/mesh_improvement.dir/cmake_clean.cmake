file(REMOVE_RECURSE
  "CMakeFiles/mesh_improvement.dir/mesh_improvement.cc.o"
  "CMakeFiles/mesh_improvement.dir/mesh_improvement.cc.o.d"
  "mesh_improvement"
  "mesh_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
