file(REMOVE_RECURSE
  "CMakeFiles/broadcast_consistency.dir/broadcast_consistency.cc.o"
  "CMakeFiles/broadcast_consistency.dir/broadcast_consistency.cc.o.d"
  "broadcast_consistency"
  "broadcast_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broadcast_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
