# Empty compiler generated dependencies file for broadcast_consistency.
# This may be replaced when dependencies are built.
