# Empty dependencies file for redis_contention.
# This may be replaced when dependencies are built.
