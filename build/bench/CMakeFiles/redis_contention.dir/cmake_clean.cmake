file(REMOVE_RECURSE
  "CMakeFiles/redis_contention.dir/redis_contention.cc.o"
  "CMakeFiles/redis_contention.dir/redis_contention.cc.o.d"
  "redis_contention"
  "redis_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redis_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
