# Empty compiler generated dependencies file for fig2c_contention.
# This may be replaced when dependencies are built.
