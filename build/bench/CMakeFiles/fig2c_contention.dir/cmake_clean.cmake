file(REMOVE_RECURSE
  "CMakeFiles/fig2c_contention.dir/fig2c_contention.cc.o"
  "CMakeFiles/fig2c_contention.dir/fig2c_contention.cc.o.d"
  "fig2c_contention"
  "fig2c_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2c_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
