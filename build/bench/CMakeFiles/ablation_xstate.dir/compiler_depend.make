# Empty compiler generated dependencies file for ablation_xstate.
# This may be replaced when dependencies are built.
