file(REMOVE_RECURSE
  "CMakeFiles/ablation_xstate.dir/ablation_xstate.cc.o"
  "CMakeFiles/ablation_xstate.dir/ablation_xstate.cc.o.d"
  "ablation_xstate"
  "ablation_xstate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_xstate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
