# Empty dependencies file for fig4b_breakdown.
# This may be replaced when dependencies are built.
