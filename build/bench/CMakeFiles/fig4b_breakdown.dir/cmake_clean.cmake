file(REMOVE_RECURSE
  "CMakeFiles/fig4b_breakdown.dir/fig4b_breakdown.cc.o"
  "CMakeFiles/fig4b_breakdown.dir/fig4b_breakdown.cc.o.d"
  "fig4b_breakdown"
  "fig4b_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
