file(REMOVE_RECURSE
  "CMakeFiles/fig4a_load_overhead.dir/fig4a_load_overhead.cc.o"
  "CMakeFiles/fig4a_load_overhead.dir/fig4a_load_overhead.cc.o.d"
  "fig4a_load_overhead"
  "fig4a_load_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_load_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
