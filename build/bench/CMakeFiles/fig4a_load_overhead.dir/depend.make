# Empty dependencies file for fig4a_load_overhead.
# This may be replaced when dependencies are built.
