file(REMOVE_RECURSE
  "CMakeFiles/rollback_hotpatch.dir/rollback_hotpatch.cc.o"
  "CMakeFiles/rollback_hotpatch.dir/rollback_hotpatch.cc.o.d"
  "rollback_hotpatch"
  "rollback_hotpatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rollback_hotpatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
