# Empty compiler generated dependencies file for rollback_hotpatch.
# This may be replaced when dependencies are built.
