# Empty dependencies file for fig2a_injection_overhead.
# This may be replaced when dependencies are built.
