file(REMOVE_RECURSE
  "CMakeFiles/fig2a_injection_overhead.dir/fig2a_injection_overhead.cc.o"
  "CMakeFiles/fig2a_injection_overhead.dir/fig2a_injection_overhead.cc.o.d"
  "fig2a_injection_overhead"
  "fig2a_injection_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_injection_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
