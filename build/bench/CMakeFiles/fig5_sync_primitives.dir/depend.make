# Empty dependencies file for fig5_sync_primitives.
# This may be replaced when dependencies are built.
