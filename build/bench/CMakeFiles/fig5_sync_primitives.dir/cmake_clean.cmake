file(REMOVE_RECURSE
  "CMakeFiles/fig5_sync_primitives.dir/fig5_sync_primitives.cc.o"
  "CMakeFiles/fig5_sync_primitives.dir/fig5_sync_primitives.cc.o.d"
  "fig5_sync_primitives"
  "fig5_sync_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sync_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
