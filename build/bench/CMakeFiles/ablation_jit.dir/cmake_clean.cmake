file(REMOVE_RECURSE
  "CMakeFiles/ablation_jit.dir/ablation_jit.cc.o"
  "CMakeFiles/ablation_jit.dir/ablation_jit.cc.o.d"
  "ablation_jit"
  "ablation_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
