# Empty dependencies file for ablation_jit.
# This may be replaced when dependencies are built.
