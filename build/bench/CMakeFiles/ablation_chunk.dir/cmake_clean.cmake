file(REMOVE_RECURSE
  "CMakeFiles/ablation_chunk.dir/ablation_chunk.cc.o"
  "CMakeFiles/ablation_chunk.dir/ablation_chunk.cc.o.d"
  "ablation_chunk"
  "ablation_chunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
