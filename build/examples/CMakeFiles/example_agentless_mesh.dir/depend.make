# Empty dependencies file for example_agentless_mesh.
# This may be replaced when dependencies are built.
