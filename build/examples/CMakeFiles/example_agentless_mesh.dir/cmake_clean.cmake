file(REMOVE_RECURSE
  "CMakeFiles/example_agentless_mesh.dir/agentless_mesh.cpp.o"
  "CMakeFiles/example_agentless_mesh.dir/agentless_mesh.cpp.o.d"
  "agentless_mesh"
  "agentless_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_agentless_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
