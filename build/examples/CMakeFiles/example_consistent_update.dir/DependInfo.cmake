
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/consistent_update.cpp" "examples/CMakeFiles/example_consistent_update.dir/consistent_update.cpp.o" "gcc" "examples/CMakeFiles/example_consistent_update.dir/consistent_update.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rdx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/rdx_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/rdx_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/rdx_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/rdx_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rdx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bpf/CMakeFiles/rdx_bpf.dir/DependInfo.cmake"
  "/root/repo/build/src/wasm/CMakeFiles/rdx_wasm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rdx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
