# Empty dependencies file for example_consistent_update.
# This may be replaced when dependencies are built.
