file(REMOVE_RECURSE
  "CMakeFiles/example_consistent_update.dir/consistent_update.cpp.o"
  "CMakeFiles/example_consistent_update.dir/consistent_update.cpp.o.d"
  "consistent_update"
  "consistent_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_consistent_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
