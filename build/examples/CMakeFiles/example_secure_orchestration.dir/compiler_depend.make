# Empty compiler generated dependencies file for example_secure_orchestration.
# This may be replaced when dependencies are built.
