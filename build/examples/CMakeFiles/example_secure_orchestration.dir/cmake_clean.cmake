file(REMOVE_RECURSE
  "CMakeFiles/example_secure_orchestration.dir/secure_orchestration.cpp.o"
  "CMakeFiles/example_secure_orchestration.dir/secure_orchestration.cpp.o.d"
  "secure_orchestration"
  "secure_orchestration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_secure_orchestration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
