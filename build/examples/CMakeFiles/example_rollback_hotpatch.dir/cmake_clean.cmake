file(REMOVE_RECURSE
  "CMakeFiles/example_rollback_hotpatch.dir/rollback_hotpatch.cpp.o"
  "CMakeFiles/example_rollback_hotpatch.dir/rollback_hotpatch.cpp.o.d"
  "rollback_hotpatch"
  "rollback_hotpatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_rollback_hotpatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
