# Empty dependencies file for example_rollback_hotpatch.
# This may be replaced when dependencies are built.
