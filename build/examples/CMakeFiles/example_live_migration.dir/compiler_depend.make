# Empty compiler generated dependencies file for example_live_migration.
# This may be replaced when dependencies are built.
