file(REMOVE_RECURSE
  "CMakeFiles/core_xstate_test.dir/core_xstate_test.cc.o"
  "CMakeFiles/core_xstate_test.dir/core_xstate_test.cc.o.d"
  "core_xstate_test"
  "core_xstate_test.pdb"
  "core_xstate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_xstate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
