# Empty dependencies file for core_xstate_test.
# This may be replaced when dependencies are built.
