file(REMOVE_RECURSE
  "CMakeFiles/bpf_verifier_test.dir/bpf_verifier_test.cc.o"
  "CMakeFiles/bpf_verifier_test.dir/bpf_verifier_test.cc.o.d"
  "bpf_verifier_test"
  "bpf_verifier_test.pdb"
  "bpf_verifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpf_verifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
