file(REMOVE_RECURSE
  "CMakeFiles/core_security_test.dir/core_security_test.cc.o"
  "CMakeFiles/core_security_test.dir/core_security_test.cc.o.d"
  "core_security_test"
  "core_security_test.pdb"
  "core_security_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_security_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
