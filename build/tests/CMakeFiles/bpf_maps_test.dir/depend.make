# Empty dependencies file for bpf_maps_test.
# This may be replaced when dependencies are built.
