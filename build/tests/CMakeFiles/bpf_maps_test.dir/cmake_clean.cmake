file(REMOVE_RECURSE
  "CMakeFiles/bpf_maps_test.dir/bpf_maps_test.cc.o"
  "CMakeFiles/bpf_maps_test.dir/bpf_maps_test.cc.o.d"
  "bpf_maps_test"
  "bpf_maps_test.pdb"
  "bpf_maps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpf_maps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
