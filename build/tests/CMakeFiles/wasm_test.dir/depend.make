# Empty dependencies file for wasm_test.
# This may be replaced when dependencies are built.
