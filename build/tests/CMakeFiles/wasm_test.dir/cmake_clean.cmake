file(REMOVE_RECURSE
  "CMakeFiles/wasm_test.dir/wasm_test.cc.o"
  "CMakeFiles/wasm_test.dir/wasm_test.cc.o.d"
  "wasm_test"
  "wasm_test.pdb"
  "wasm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
