# Empty compiler generated dependencies file for bpf_toolchain_test.
# This may be replaced when dependencies are built.
