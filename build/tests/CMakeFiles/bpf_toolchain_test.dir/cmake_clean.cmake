file(REMOVE_RECURSE
  "CMakeFiles/bpf_toolchain_test.dir/bpf_toolchain_test.cc.o"
  "CMakeFiles/bpf_toolchain_test.dir/bpf_toolchain_test.cc.o.d"
  "bpf_toolchain_test"
  "bpf_toolchain_test.pdb"
  "bpf_toolchain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpf_toolchain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
