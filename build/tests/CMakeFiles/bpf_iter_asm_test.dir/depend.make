# Empty dependencies file for bpf_iter_asm_test.
# This may be replaced when dependencies are built.
