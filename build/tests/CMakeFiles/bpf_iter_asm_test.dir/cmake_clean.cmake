file(REMOVE_RECURSE
  "CMakeFiles/bpf_iter_asm_test.dir/bpf_iter_asm_test.cc.o"
  "CMakeFiles/bpf_iter_asm_test.dir/bpf_iter_asm_test.cc.o.d"
  "bpf_iter_asm_test"
  "bpf_iter_asm_test.pdb"
  "bpf_iter_asm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpf_iter_asm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
