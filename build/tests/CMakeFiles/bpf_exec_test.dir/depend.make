# Empty dependencies file for bpf_exec_test.
# This may be replaced when dependencies are built.
