file(REMOVE_RECURSE
  "CMakeFiles/bpf_exec_test.dir/bpf_exec_test.cc.o"
  "CMakeFiles/bpf_exec_test.dir/bpf_exec_test.cc.o.d"
  "bpf_exec_test"
  "bpf_exec_test.pdb"
  "bpf_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpf_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
