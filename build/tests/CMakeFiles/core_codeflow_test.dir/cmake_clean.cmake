file(REMOVE_RECURSE
  "CMakeFiles/core_codeflow_test.dir/core_codeflow_test.cc.o"
  "CMakeFiles/core_codeflow_test.dir/core_codeflow_test.cc.o.d"
  "core_codeflow_test"
  "core_codeflow_test.pdb"
  "core_codeflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_codeflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
