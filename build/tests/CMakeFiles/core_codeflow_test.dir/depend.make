# Empty dependencies file for core_codeflow_test.
# This may be replaced when dependencies are built.
