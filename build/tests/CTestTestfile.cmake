# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bpf_toolchain_test[1]_include.cmake")
include("/root/repo/build/tests/core_codeflow_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/rdma_test[1]_include.cmake")
include("/root/repo/build/tests/bpf_maps_test[1]_include.cmake")
include("/root/repo/build/tests/bpf_exec_test[1]_include.cmake")
include("/root/repo/build/tests/bpf_verifier_test[1]_include.cmake")
include("/root/repo/build/tests/wasm_test[1]_include.cmake")
include("/root/repo/build/tests/agent_test[1]_include.cmake")
include("/root/repo/build/tests/mesh_test[1]_include.cmake")
include("/root/repo/build/tests/kvstore_test[1]_include.cmake")
include("/root/repo/build/tests/core_xstate_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/core_security_test[1]_include.cmake")
include("/root/repo/build/tests/orchestrator_test[1]_include.cmake")
include("/root/repo/build/tests/bpf_iter_asm_test[1]_include.cmake")
