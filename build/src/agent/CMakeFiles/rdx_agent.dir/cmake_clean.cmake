file(REMOVE_RECURSE
  "CMakeFiles/rdx_agent.dir/agent.cc.o"
  "CMakeFiles/rdx_agent.dir/agent.cc.o.d"
  "librdx_agent.a"
  "librdx_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdx_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
