file(REMOVE_RECURSE
  "librdx_agent.a"
)
