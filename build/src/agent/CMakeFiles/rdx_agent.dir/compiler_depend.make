# Empty compiler generated dependencies file for rdx_agent.
# This may be replaced when dependencies are built.
