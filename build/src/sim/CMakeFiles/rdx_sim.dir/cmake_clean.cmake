file(REMOVE_RECURSE
  "CMakeFiles/rdx_sim.dir/cache.cc.o"
  "CMakeFiles/rdx_sim.dir/cache.cc.o.d"
  "CMakeFiles/rdx_sim.dir/cpu.cc.o"
  "CMakeFiles/rdx_sim.dir/cpu.cc.o.d"
  "CMakeFiles/rdx_sim.dir/event_queue.cc.o"
  "CMakeFiles/rdx_sim.dir/event_queue.cc.o.d"
  "librdx_sim.a"
  "librdx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
