file(REMOVE_RECURSE
  "librdx_sim.a"
)
