# Empty compiler generated dependencies file for rdx_sim.
# This may be replaced when dependencies are built.
