file(REMOVE_RECURSE
  "CMakeFiles/rdx_mesh.dir/app.cc.o"
  "CMakeFiles/rdx_mesh.dir/app.cc.o.d"
  "CMakeFiles/rdx_mesh.dir/mesh.cc.o"
  "CMakeFiles/rdx_mesh.dir/mesh.cc.o.d"
  "librdx_mesh.a"
  "librdx_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdx_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
