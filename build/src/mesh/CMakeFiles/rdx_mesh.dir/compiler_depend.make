# Empty compiler generated dependencies file for rdx_mesh.
# This may be replaced when dependencies are built.
