file(REMOVE_RECURSE
  "librdx_mesh.a"
)
