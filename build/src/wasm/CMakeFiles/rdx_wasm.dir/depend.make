# Empty dependencies file for rdx_wasm.
# This may be replaced when dependencies are built.
