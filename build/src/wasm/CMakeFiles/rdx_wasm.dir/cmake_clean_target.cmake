file(REMOVE_RECURSE
  "librdx_wasm.a"
)
