file(REMOVE_RECURSE
  "CMakeFiles/rdx_wasm.dir/filter.cc.o"
  "CMakeFiles/rdx_wasm.dir/filter.cc.o.d"
  "librdx_wasm.a"
  "librdx_wasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdx_wasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
