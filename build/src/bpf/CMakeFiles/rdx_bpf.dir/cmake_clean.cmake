file(REMOVE_RECURSE
  "CMakeFiles/rdx_bpf.dir/assembler.cc.o"
  "CMakeFiles/rdx_bpf.dir/assembler.cc.o.d"
  "CMakeFiles/rdx_bpf.dir/exec.cc.o"
  "CMakeFiles/rdx_bpf.dir/exec.cc.o.d"
  "CMakeFiles/rdx_bpf.dir/insn.cc.o"
  "CMakeFiles/rdx_bpf.dir/insn.cc.o.d"
  "CMakeFiles/rdx_bpf.dir/interpreter.cc.o"
  "CMakeFiles/rdx_bpf.dir/interpreter.cc.o.d"
  "CMakeFiles/rdx_bpf.dir/jit.cc.o"
  "CMakeFiles/rdx_bpf.dir/jit.cc.o.d"
  "CMakeFiles/rdx_bpf.dir/maps.cc.o"
  "CMakeFiles/rdx_bpf.dir/maps.cc.o.d"
  "CMakeFiles/rdx_bpf.dir/proggen.cc.o"
  "CMakeFiles/rdx_bpf.dir/proggen.cc.o.d"
  "CMakeFiles/rdx_bpf.dir/program.cc.o"
  "CMakeFiles/rdx_bpf.dir/program.cc.o.d"
  "CMakeFiles/rdx_bpf.dir/verifier.cc.o"
  "CMakeFiles/rdx_bpf.dir/verifier.cc.o.d"
  "librdx_bpf.a"
  "librdx_bpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdx_bpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
