
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bpf/assembler.cc" "src/bpf/CMakeFiles/rdx_bpf.dir/assembler.cc.o" "gcc" "src/bpf/CMakeFiles/rdx_bpf.dir/assembler.cc.o.d"
  "/root/repo/src/bpf/exec.cc" "src/bpf/CMakeFiles/rdx_bpf.dir/exec.cc.o" "gcc" "src/bpf/CMakeFiles/rdx_bpf.dir/exec.cc.o.d"
  "/root/repo/src/bpf/insn.cc" "src/bpf/CMakeFiles/rdx_bpf.dir/insn.cc.o" "gcc" "src/bpf/CMakeFiles/rdx_bpf.dir/insn.cc.o.d"
  "/root/repo/src/bpf/interpreter.cc" "src/bpf/CMakeFiles/rdx_bpf.dir/interpreter.cc.o" "gcc" "src/bpf/CMakeFiles/rdx_bpf.dir/interpreter.cc.o.d"
  "/root/repo/src/bpf/jit.cc" "src/bpf/CMakeFiles/rdx_bpf.dir/jit.cc.o" "gcc" "src/bpf/CMakeFiles/rdx_bpf.dir/jit.cc.o.d"
  "/root/repo/src/bpf/maps.cc" "src/bpf/CMakeFiles/rdx_bpf.dir/maps.cc.o" "gcc" "src/bpf/CMakeFiles/rdx_bpf.dir/maps.cc.o.d"
  "/root/repo/src/bpf/proggen.cc" "src/bpf/CMakeFiles/rdx_bpf.dir/proggen.cc.o" "gcc" "src/bpf/CMakeFiles/rdx_bpf.dir/proggen.cc.o.d"
  "/root/repo/src/bpf/program.cc" "src/bpf/CMakeFiles/rdx_bpf.dir/program.cc.o" "gcc" "src/bpf/CMakeFiles/rdx_bpf.dir/program.cc.o.d"
  "/root/repo/src/bpf/verifier.cc" "src/bpf/CMakeFiles/rdx_bpf.dir/verifier.cc.o" "gcc" "src/bpf/CMakeFiles/rdx_bpf.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rdx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
