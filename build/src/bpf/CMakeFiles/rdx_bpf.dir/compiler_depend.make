# Empty compiler generated dependencies file for rdx_bpf.
# This may be replaced when dependencies are built.
