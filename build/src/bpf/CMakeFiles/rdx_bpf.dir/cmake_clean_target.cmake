file(REMOVE_RECURSE
  "librdx_bpf.a"
)
