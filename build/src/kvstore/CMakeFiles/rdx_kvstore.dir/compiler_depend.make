# Empty compiler generated dependencies file for rdx_kvstore.
# This may be replaced when dependencies are built.
