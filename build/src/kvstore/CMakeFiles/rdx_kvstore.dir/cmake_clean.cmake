file(REMOVE_RECURSE
  "CMakeFiles/rdx_kvstore.dir/kvstore.cc.o"
  "CMakeFiles/rdx_kvstore.dir/kvstore.cc.o.d"
  "librdx_kvstore.a"
  "librdx_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdx_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
