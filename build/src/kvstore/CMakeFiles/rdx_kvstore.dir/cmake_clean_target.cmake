file(REMOVE_RECURSE
  "librdx_kvstore.a"
)
