file(REMOVE_RECURSE
  "CMakeFiles/rdx_common.dir/bytes.cc.o"
  "CMakeFiles/rdx_common.dir/bytes.cc.o.d"
  "CMakeFiles/rdx_common.dir/log.cc.o"
  "CMakeFiles/rdx_common.dir/log.cc.o.d"
  "CMakeFiles/rdx_common.dir/stats.cc.o"
  "CMakeFiles/rdx_common.dir/stats.cc.o.d"
  "CMakeFiles/rdx_common.dir/status.cc.o"
  "CMakeFiles/rdx_common.dir/status.cc.o.d"
  "librdx_common.a"
  "librdx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
