# Empty compiler generated dependencies file for rdx_common.
# This may be replaced when dependencies are built.
