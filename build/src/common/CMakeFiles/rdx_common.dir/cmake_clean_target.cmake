file(REMOVE_RECURSE
  "librdx_common.a"
)
