file(REMOVE_RECURSE
  "librdx_core.a"
)
