file(REMOVE_RECURSE
  "CMakeFiles/rdx_core.dir/broadcast.cc.o"
  "CMakeFiles/rdx_core.dir/broadcast.cc.o.d"
  "CMakeFiles/rdx_core.dir/codeflow.cc.o"
  "CMakeFiles/rdx_core.dir/codeflow.cc.o.d"
  "CMakeFiles/rdx_core.dir/gatekeeper.cc.o"
  "CMakeFiles/rdx_core.dir/gatekeeper.cc.o.d"
  "CMakeFiles/rdx_core.dir/inspector.cc.o"
  "CMakeFiles/rdx_core.dir/inspector.cc.o.d"
  "CMakeFiles/rdx_core.dir/orchestrator.cc.o"
  "CMakeFiles/rdx_core.dir/orchestrator.cc.o.d"
  "CMakeFiles/rdx_core.dir/sandbox.cc.o"
  "CMakeFiles/rdx_core.dir/sandbox.cc.o.d"
  "librdx_core.a"
  "librdx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
