# Empty dependencies file for rdx_rdma.
# This may be replaced when dependencies are built.
