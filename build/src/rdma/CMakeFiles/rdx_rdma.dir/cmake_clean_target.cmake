file(REMOVE_RECURSE
  "librdx_rdma.a"
)
