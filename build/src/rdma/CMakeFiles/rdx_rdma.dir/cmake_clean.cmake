file(REMOVE_RECURSE
  "CMakeFiles/rdx_rdma.dir/cq.cc.o"
  "CMakeFiles/rdx_rdma.dir/cq.cc.o.d"
  "CMakeFiles/rdx_rdma.dir/fabric.cc.o"
  "CMakeFiles/rdx_rdma.dir/fabric.cc.o.d"
  "CMakeFiles/rdx_rdma.dir/memory.cc.o"
  "CMakeFiles/rdx_rdma.dir/memory.cc.o.d"
  "librdx_rdma.a"
  "librdx_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdx_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
